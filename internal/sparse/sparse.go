// Package sparse implements the compressed-sparse-row matrix used to
// represent the path/gate incidence system A of Eq. (9): one row per
// selected timing path, one column per gate, entry a_ij = d_j * lambda_j
// when gate j lies on path i.
//
// The solvers need exactly four operations — y = A x, g = A^T r, per-row
// Euclidean norms (Eq. 11 sampling probabilities), and row subsetting
// (Algorithm 1's uniform sampling) — so that is most of the API. On top of
// that, incremental recalibration patches a built matrix in place: SetRow,
// InsertRow and RemoveRow splice individual rows (and GrowCols widens the
// column space) so a mostly-unchanged system is updated without a rebuild.
package sparse

import (
	"fmt"
	"sync"

	"mgba/internal/faultinject"
	"mgba/internal/par"
)

// Matrix is a CSR matrix. It is immutable under the solver-facing
// operations; the row-patching methods (SetRow, InsertRow, RemoveRow,
// GrowCols) mutate it in place and invalidate slices previously returned
// by Row.
type Matrix struct {
	rows, cols int
	rowPtr     []int     // len rows+1
	colIdx     []int     // len nnz
	val        []float64 // len nnz
	par        int       // worker count for the bulk kernels (<=1: serial)
}

// rowScratch is the pooled working set of normalizeRowInto: one row's
// index/value pairs, sorted and deduplicated in place so builder-heavy
// paths (cold calibration, SelectRows-driven subsampling, incremental row
// patching) add rows without a per-row allocation.
type rowScratch struct {
	idx []int
	val []float64
}

var rowPool = sync.Pool{New: func() any { return new(rowScratch) }}

// shellGaps is the Ciura gap sequence; rows are path cells, so their
// length is bounded by path depth and shellsort is comfortably fast.
var shellGaps = [...]int{701, 301, 132, 57, 23, 10, 4, 1}

// sortPairs sorts the parallel index/value slices by index using an
// in-place shellsort: no allocation, no closure, and a deterministic
// order for any input.
func sortPairs(idx []int, val []float64) {
	n := len(idx)
	for _, gap := range shellGaps {
		if gap >= n {
			continue
		}
		for i := gap; i < n; i++ {
			j, v := idx[i], val[i]
			k := i
			for ; k >= gap && idx[k-gap] > j; k -= gap {
				idx[k], val[k] = idx[k-gap], val[k-gap]
			}
			idx[k], val[k] = j, v
		}
	}
}

// normalizeRowInto validates one row's parallel index/value slices
// against the column count and leaves the row in canonical CSR form in sc:
// column-sorted with duplicate columns summed (a gate appearing twice on
// a reconvergent path contributes twice). Builder.AddRow and the patching
// methods share it, so a patched row is bit-identical to the same row
// built from scratch.
func normalizeRowInto(sc *rowScratch, cols int, indices []int, values []float64) error {
	if len(indices) != len(values) {
		return fmt.Errorf("sparse: %d indices for %d values", len(indices), len(values))
	}
	for _, j := range indices {
		if j < 0 || j >= cols {
			return fmt.Errorf("sparse: column %d out of range [0,%d)", j, cols)
		}
	}
	sc.idx = append(sc.idx[:0], indices...)
	sc.val = append(sc.val[:0], values...)
	sortPairs(sc.idx, sc.val)
	w := 0
	for k := 0; k < len(sc.idx); k++ {
		if w > 0 && sc.idx[k] == sc.idx[w-1] {
			sc.val[w-1] += sc.val[k]
			continue
		}
		sc.idx[w], sc.val[w] = sc.idx[k], sc.val[k]
		w++
	}
	sc.idx, sc.val = sc.idx[:w], sc.val[:w]
	return nil
}

// Builder accumulates rows for a Matrix. Rows are appended in order; the
// column count is fixed up front.
type Builder struct {
	cols   int
	rowPtr []int
	colIdx []int
	val    []float64
}

// NewBuilder returns a builder for matrices with the given column count.
// It panics if cols is negative.
func NewBuilder(cols int) *Builder {
	if cols < 0 {
		panic("sparse: negative column count")
	}
	return &Builder{cols: cols, rowPtr: []int{0}}
}

// EnsureCols widens the builder's column space to at least cols; existing
// rows are untouched. Streaming assembly discovers columns shard by shard,
// so the final count is not known when the builder is created. Shrinking
// is a silent no-op, mirroring Matrix.GrowCols' grow-only contract.
func (b *Builder) EnsureCols(cols int) {
	if cols > b.cols {
		b.cols = cols
	}
}

// AddRow appends one row given parallel index/value slices. Indices may be
// unordered and may repeat; repeated indices are summed (a gate appearing
// twice on a reconvergent path contributes twice). It returns an error for
// out-of-range indices or mismatched slice lengths.
func (b *Builder) AddRow(indices []int, values []float64) error {
	sc := rowPool.Get().(*rowScratch)
	defer rowPool.Put(sc)
	if err := normalizeRowInto(sc, b.cols, indices, values); err != nil {
		return err
	}
	b.colIdx = append(b.colIdx, sc.idx...)
	b.val = append(b.val, sc.val...)
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
	return nil
}

// Build finalizes the accumulated rows into an immutable Matrix. The
// builder must not be used afterwards.
func (b *Builder) Build() *Matrix {
	m := &Matrix{
		rows:   len(b.rowPtr) - 1,
		cols:   b.cols,
		rowPtr: b.rowPtr,
		colIdx: b.colIdx,
		val:    b.val,
	}
	b.rowPtr, b.colIdx, b.val = nil, nil, nil
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.val) }

// Row returns the column indices and values of row i as shared slices; the
// caller must not modify them.
func (m *Matrix) Row(i int) (indices []int, values []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// SetParallelism sets the worker count used by the bulk kernels (MulVec,
// MulTVec, RowNormsSq). The value is a resolved worker count (as returned
// by par.Workers); 0 and 1 both keep the kernels on the calling
// goroutine. The setting never changes results: whenever the matrix is
// large enough to use the blocked decomposition, the decomposition is a
// function of the matrix shape alone, so every worker count — including
// sequential execution of the same blocks — produces bit-identical
// output. SelectRows propagates the setting to submatrices.
func (m *Matrix) SetParallelism(workers int) { m.par = workers }

// Parallelism returns the worker count set by SetParallelism.
func (m *Matrix) Parallelism() int { return m.par }

// parCutoffNNZ is the stored-entry count below which the bulk kernels
// stay on the plain sequential path: under it, block bookkeeping costs
// more than the work. Like the block grain, the cutoff depends only on
// the matrix shape, never on the worker count.
const parCutoffNNZ = 1 << 15

// accBlocks is the fixed number of row blocks used by the blocked
// transpose product: each block scatters into its own column-sized
// accumulator and the accumulators are merged in ascending block order.
// Fixed (rather than per-worker) accumulators are what keep the result
// bit-identical at every worker count; 8 bounds both the merge cost and
// the useful parallelism of MulTVec.
const accBlocks = 8

// mergeGrain is the column-block grain of the (slot-writing, hence
// trivially deterministic) accumulator merge.
const mergeGrain = 2048

// rowGrain is the row-block grain of the row-partitioned kernels, sized
// so one block carries roughly 4096 stored entries.
func (m *Matrix) rowGrain() int {
	nnz := len(m.val)
	if m.rows == 0 || nnz == 0 {
		return 1
	}
	g := m.rows * 4096 / nnz
	if g < 1 {
		g = 1
	}
	return g
}

// mulBody is the row-partitioned A*x kernel: each dst slot is written by
// exactly one block, so the parallel result is bitwise the serial one.
type mulBody struct {
	m   *Matrix
	x   []float64
	dst []float64
}

func (b *mulBody) Chunk(_, lo, hi int) {
	m := b.m
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * b.x[m.colIdx[k]]
		}
		b.dst[i] = s
	}
}

// mulTBody is one row block of the blocked transpose product: scatter
// into this block's private column accumulator.
type mulTBody struct {
	m   *Matrix
	y   []float64
	acc [][]float64
}

func (b *mulTBody) Chunk(blk, lo, hi int) {
	a := b.acc[blk]
	for j := range a {
		a[j] = 0
	}
	m := b.m
	for i := lo; i < hi; i++ {
		yi := b.y[i]
		if yi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			a[m.colIdx[k]] += m.val[k] * yi
		}
	}
}

// mergeBody combines the per-block accumulators in ascending block order,
// one dst slot per column — deterministic at any worker count.
type mergeBody struct {
	dst []float64
	acc [][]float64
}

func (b *mergeBody) Chunk(_, lo, hi int) {
	for j := lo; j < hi; j++ {
		s := b.acc[0][j]
		for t := 1; t < len(b.acc); t++ {
			s += b.acc[t][j]
		}
		b.dst[j] = s
	}
}

// normsBody is the row-partitioned squared-norm kernel.
type normsBody struct {
	m   *Matrix
	dst []float64
}

func (b *normsBody) Chunk(_, lo, hi int) {
	m := b.m
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * m.val[k]
		}
		b.dst[i] = s
	}
}

// kernelScratch pools the reusable bodies and accumulators of the bulk
// kernels so their steady state allocates nothing.
type kernelScratch struct {
	mul   mulBody
	mulT  mulTBody
	merge mergeBody
	norms normsBody
	acc   [][]float64
}

var kernelPool = sync.Pool{New: func() any { return new(kernelScratch) }}

// accumulators returns blocks column-sized accumulators, reusing the
// scratch storage. Contents are stale; mulTBody zeroes each block before
// scattering.
func (sc *kernelScratch) accumulators(blocks, cols int) [][]float64 {
	for len(sc.acc) < blocks {
		sc.acc = append(sc.acc, nil)
	}
	for b := 0; b < blocks; b++ {
		if cap(sc.acc[b]) < cols {
			sc.acc[b] = make([]float64, cols)
		}
		sc.acc[b] = sc.acc[b][:cols]
	}
	return sc.acc[:blocks]
}

// MulVec writes A*x into dst and returns dst; dst is allocated when nil.
func (m *Matrix) MulVec(dst, x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec x has %d entries, want %d", len(x), m.cols))
	}
	if dst == nil {
		dst = make([]float64, m.rows)
	} else if len(dst) != m.rows {
		panic("sparse: MulVec dst length mismatch")
	}
	// Row-partitioned output slots make the parallel path bitwise equal to
	// the serial loop, so this one may gate on the worker count.
	if m.par > 1 && len(m.val) >= parCutoffNNZ {
		sc := kernelPool.Get().(*kernelScratch)
		sc.mul = mulBody{m: m, x: x, dst: dst}
		par.ForBody(m.par, m.rows, m.rowGrain(), &sc.mul)
		sc.mul = mulBody{}
		kernelPool.Put(sc)
		return dst
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
	return dst
}

// MulTVec writes A^T*y into dst and returns dst; dst is allocated when
// nil. Above the nnz cutoff it always uses the blocked decomposition —
// per-block column accumulators merged in ascending block order — even
// sequentially, so the result is bit-identical at every worker count.
func (m *Matrix) MulTVec(dst, y []float64) []float64 {
	if len(y) != m.rows {
		panic(fmt.Sprintf("sparse: MulTVec y has %d entries, want %d", len(y), m.rows))
	}
	if dst == nil {
		dst = make([]float64, m.cols)
	} else if len(dst) != m.cols {
		panic("sparse: MulTVec dst length mismatch")
	}
	if len(m.val) >= parCutoffNNZ && m.rows >= accBlocks {
		grain := (m.rows + accBlocks - 1) / accBlocks
		blocks := par.Blocks(m.rows, grain)
		sc := kernelPool.Get().(*kernelScratch)
		acc := sc.accumulators(blocks, m.cols)
		sc.mulT = mulTBody{m: m, y: y, acc: acc}
		par.ForBody(m.par, m.rows, grain, &sc.mulT)
		sc.merge = mergeBody{dst: dst, acc: acc}
		par.ForBody(m.par, m.cols, mergeGrain, &sc.merge)
		sc.mulT = mulTBody{}
		sc.merge = mergeBody{}
		kernelPool.Put(sc)
		return dst
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			dst[m.colIdx[k]] += m.val[k] * yi
		}
	}
	return dst
}

// RowDot returns <a_i, x>, the product of row i with x.
func (m *Matrix) RowDot(i int, x []float64) float64 {
	var s float64
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		s += m.val[k] * x[m.colIdx[k]]
	}
	return s
}

// AddScaledRow performs dst += alpha * a_i for the sparse row i.
func (m *Matrix) AddScaledRow(dst []float64, i int, alpha float64) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		dst[m.colIdx[k]] += alpha * m.val[k]
	}
}

// RowNormsSq returns ||a_i||^2 for every row — the sampling weights of
// Eq. (11). Slot-written per row, so parallel and serial agree bitwise.
func (m *Matrix) RowNormsSq() []float64 {
	out := make([]float64, m.rows)
	if m.par > 1 && len(m.val) >= parCutoffNNZ {
		sc := kernelPool.Get().(*kernelScratch)
		sc.norms = normsBody{m: m, dst: out}
		par.ForBody(m.par, m.rows, m.rowGrain(), &sc.norms)
		sc.norms = normsBody{}
		kernelPool.Put(sc)
		return out
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * m.val[k]
		}
		out[i] = s
	}
	return out
}

// ColumnCoverage returns the number of columns touched by at least one row.
// The path-selection study of §3.2 reports this as "gate coverage".
func (m *Matrix) ColumnCoverage() int {
	seen := make([]bool, m.cols)
	n := 0
	for _, j := range m.colIdx {
		if !seen[j] {
			seen[j] = true
			n++
		}
	}
	return n
}

// SelectRows builds a new matrix containing the given rows of m, in order.
// Row indices may repeat. It panics on out-of-range indices.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	rp := make([]int, 1, len(rows)+1)
	nnz := 0
	for _, i := range rows {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("sparse: SelectRows index %d out of range", i))
		}
		nnz += m.rowPtr[i+1] - m.rowPtr[i]
		rp = append(rp, nnz)
	}
	ci := make([]int, 0, nnz)
	vv := make([]float64, 0, nnz)
	for _, i := range rows {
		ci = append(ci, m.colIdx[m.rowPtr[i]:m.rowPtr[i+1]]...)
		vv = append(vv, m.val[m.rowPtr[i]:m.rowPtr[i+1]]...)
	}
	return &Matrix{rows: len(rows), cols: m.cols, rowPtr: rp, colIdx: ci, val: vv, par: m.par}
}

// GrowCols widens the column space to cols. Existing entries keep their
// columns; new columns start empty. It returns an error when cols would
// shrink the matrix.
func (m *Matrix) GrowCols(cols int) error {
	if cols < m.cols {
		return fmt.Errorf("sparse: GrowCols from %d to %d would shrink", m.cols, cols)
	}
	m.cols = cols
	return nil
}

// SetRow replaces row i in place. The new row may have a different entry
// count: storage after the row is spliced and later row offsets shift.
// Indices follow AddRow's contract (unordered, duplicates summed). Slices
// previously returned by Row become stale after a successful SetRow.
func (m *Matrix) SetRow(i int, indices []int, values []float64) error {
	if i < 0 || i >= m.rows {
		return fmt.Errorf("sparse: SetRow index %d out of range [0,%d)", i, m.rows)
	}
	sc := rowPool.Get().(*rowScratch)
	defer rowPool.Put(sc)
	if err := normalizeRowInto(sc, m.cols, indices, values); err != nil {
		return err
	}
	ci, vv := sc.idx, sc.val
	faultinject.Slice(faultinject.SparseRowPatch, vv)
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	d := len(vv) - (hi - lo)
	if d > 0 {
		n := len(m.val)
		m.colIdx = append(m.colIdx, make([]int, d)...)
		m.val = append(m.val, make([]float64, d)...)
		copy(m.colIdx[hi+d:], m.colIdx[hi:n])
		copy(m.val[hi+d:], m.val[hi:n])
	} else if d < 0 {
		n := len(m.val)
		copy(m.colIdx[hi+d:], m.colIdx[hi:])
		copy(m.val[hi+d:], m.val[hi:])
		m.colIdx = m.colIdx[:n+d]
		m.val = m.val[:n+d]
	}
	copy(m.colIdx[lo:lo+len(ci)], ci)
	copy(m.val[lo:lo+len(vv)], vv)
	if d != 0 {
		for r := i + 1; r < len(m.rowPtr); r++ {
			m.rowPtr[r] += d
		}
	}
	return nil
}

// InsertRow inserts a new row before position i (i == Rows appends). The
// entries follow AddRow's contract.
func (m *Matrix) InsertRow(i int, indices []int, values []float64) error {
	if i < 0 || i > m.rows {
		return fmt.Errorf("sparse: InsertRow index %d out of range [0,%d]", i, m.rows)
	}
	p := m.rowPtr[i]
	m.rowPtr = append(m.rowPtr, 0)
	copy(m.rowPtr[i+1:], m.rowPtr[i:])
	m.rowPtr[i] = p // new empty row: rowPtr[i] == rowPtr[i+1]
	m.rows++
	if err := m.SetRow(i, indices, values); err != nil {
		// Roll the empty row back out so a validation failure is clean.
		copy(m.rowPtr[i:], m.rowPtr[i+1:])
		m.rowPtr = m.rowPtr[:len(m.rowPtr)-1]
		m.rows--
		return err
	}
	return nil
}

// RemoveRow deletes row i in place; later rows shift up.
func (m *Matrix) RemoveRow(i int) error {
	if i < 0 || i >= m.rows {
		return fmt.Errorf("sparse: RemoveRow index %d out of range [0,%d)", i, m.rows)
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	d := hi - lo
	copy(m.colIdx[lo:], m.colIdx[hi:])
	copy(m.val[lo:], m.val[hi:])
	m.colIdx = m.colIdx[:len(m.colIdx)-d]
	m.val = m.val[:len(m.val)-d]
	for r := i + 1; r < len(m.rowPtr)-1; r++ {
		m.rowPtr[r] = m.rowPtr[r+1] - d
	}
	m.rowPtr = m.rowPtr[:len(m.rowPtr)-1]
	m.rows--
	return nil
}

// Dense expands the matrix to row-major dense form; intended for tests and
// tiny examples only.
func (m *Matrix) Dense() [][]float64 {
	out := make([][]float64, m.rows)
	for i := range out {
		out[i] = make([]float64, m.cols)
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out[i][m.colIdx[k]] = m.val[k]
		}
	}
	return out
}
