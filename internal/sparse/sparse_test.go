package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"mgba/internal/num"
	"mgba/internal/rng"
)

func build(t *testing.T, cols int, rows ...[]struct {
	j int
	v float64
}) *Matrix {
	t.Helper()
	b := NewBuilder(cols)
	for _, r := range rows {
		idx := make([]int, len(r))
		val := make([]float64, len(r))
		for k, e := range r {
			idx[k], val[k] = e.j, e.v
		}
		if err := b.AddRow(idx, val); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

type ent = struct {
	j int
	v float64
}

func TestBuilderBasic(t *testing.T) {
	m := build(t, 3, []ent{{0, 1}, {2, 2}}, []ent{{1, 3}})
	if m.Rows() != 2 || m.Cols() != 3 || m.NNZ() != 3 {
		t.Fatalf("dims = %dx%d nnz %d", m.Rows(), m.Cols(), m.NNZ())
	}
	d := m.Dense()
	want := [][]float64{{1, 0, 2}, {0, 3, 0}}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Fatalf("Dense = %v", d)
			}
		}
	}
}

func TestBuilderEmptyRow(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddRow(nil, nil); err != nil {
		t.Fatal(err)
	}
	m := b.Build()
	if m.Rows() != 1 || m.NNZ() != 0 {
		t.Fatalf("rows=%d nnz=%d", m.Rows(), m.NNZ())
	}
	y := m.MulVec(nil, []float64{1, 2})
	if y[0] != 0 {
		t.Fatalf("empty row product = %v", y[0])
	}
}

func TestBuilderUnorderedAndDuplicates(t *testing.T) {
	b := NewBuilder(4)
	// Unordered input with a duplicate column (gate on a reconvergent path).
	if err := b.AddRow([]int{3, 1, 3}, []float64{5, 2, 7}); err != nil {
		t.Fatal(err)
	}
	m := b.Build()
	idx, val := m.Row(0)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("indices = %v", idx)
	}
	if val[0] != 2 || val[1] != 12 {
		t.Fatalf("values = %v (duplicates must sum)", val)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddRow([]int{0}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := b.AddRow([]int{2}, []float64{1}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if err := b.AddRow([]int{-1}, []float64{1}); err == nil {
		t.Fatal("negative column accepted")
	}
}

func TestNewBuilderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(-1)
}

func TestMulVec(t *testing.T) {
	m := build(t, 3, []ent{{0, 1}, {2, 2}}, []ent{{1, 3}})
	y := m.MulVec(nil, []float64{1, 2, 3})
	if y[0] != 7 || y[1] != 6 {
		t.Fatalf("MulVec = %v", y)
	}
	// Into provided destination.
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 0, 0})
	if dst[0] != 1 || dst[1] != 0 {
		t.Fatalf("MulVec dst = %v", dst)
	}
}

func TestMulVecPanics(t *testing.T) {
	m := build(t, 3, []ent{{0, 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MulVec(nil, []float64{1, 2})
}

func TestMulTVec(t *testing.T) {
	m := build(t, 3, []ent{{0, 1}, {2, 2}}, []ent{{1, 3}})
	g := m.MulTVec(nil, []float64{2, 5})
	if g[0] != 2 || g[1] != 15 || g[2] != 4 {
		t.Fatalf("MulTVec = %v", g)
	}
	// dst must be zeroed before accumulation.
	dst := []float64{9, 9, 9}
	m.MulTVec(dst, []float64{0, 0})
	if dst[0] != 0 || dst[1] != 0 || dst[2] != 0 {
		t.Fatalf("MulTVec did not clear dst: %v", dst)
	}
}

func TestAdjointProperty(t *testing.T) {
	// <Ax, y> == <x, A^T y> for random sparse matrices.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows, cols := 1+r.Intn(20), 1+r.Intn(15)
		b := NewBuilder(cols)
		for i := 0; i < rows; i++ {
			n := r.Intn(cols + 1)
			idx := r.SampleWithoutReplacement(cols, n)
			val := make([]float64, n)
			for k := range val {
				val[k] = r.NormFloat64()
			}
			if err := b.AddRow(idx, val); err != nil {
				return false
			}
		}
		m := b.Build()
		x := make([]float64, cols)
		y := make([]float64, rows)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		lhs := num.Dot(m.MulVec(nil, x), y)
		rhs := num.Dot(x, m.MulTVec(nil, y))
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRowDotMatchesMulVec(t *testing.T) {
	m := build(t, 4, []ent{{0, 1}, {3, -2}}, []ent{{1, 5}}, []ent{})
	x := []float64{1, 2, 3, 4}
	y := m.MulVec(nil, x)
	for i := 0; i < m.Rows(); i++ {
		if got := m.RowDot(i, x); got != y[i] {
			t.Fatalf("RowDot(%d) = %v, MulVec gave %v", i, got, y[i])
		}
	}
}

func TestAddScaledRow(t *testing.T) {
	m := build(t, 3, []ent{{0, 2}, {2, 4}})
	dst := []float64{1, 1, 1}
	m.AddScaledRow(dst, 0, 0.5)
	if dst[0] != 2 || dst[1] != 1 || dst[2] != 3 {
		t.Fatalf("AddScaledRow = %v", dst)
	}
}

func TestRowNormsSq(t *testing.T) {
	m := build(t, 3, []ent{{0, 3}, {1, 4}}, []ent{})
	n := m.RowNormsSq()
	if n[0] != 25 || n[1] != 0 {
		t.Fatalf("RowNormsSq = %v", n)
	}
}

func TestColumnCoverage(t *testing.T) {
	m := build(t, 5, []ent{{0, 1}, {2, 1}}, []ent{{2, 1}, {4, 1}})
	if got := m.ColumnCoverage(); got != 3 {
		t.Fatalf("ColumnCoverage = %d, want 3", got)
	}
}

func TestSelectRows(t *testing.T) {
	m := build(t, 3, []ent{{0, 1}}, []ent{{1, 2}}, []ent{{2, 3}})
	s := m.SelectRows([]int{2, 0, 2})
	if s.Rows() != 3 || s.Cols() != 3 {
		t.Fatalf("dims = %dx%d", s.Rows(), s.Cols())
	}
	d := s.Dense()
	if d[0][2] != 3 || d[1][0] != 1 || d[2][2] != 3 {
		t.Fatalf("SelectRows Dense = %v", d)
	}
}

func TestSelectRowsEmpty(t *testing.T) {
	m := build(t, 3, []ent{{0, 1}})
	s := m.SelectRows(nil)
	if s.Rows() != 0 || s.Cols() != 3 {
		t.Fatalf("empty select dims = %dx%d", s.Rows(), s.Cols())
	}
}

func TestSelectRowsPanics(t *testing.T) {
	m := build(t, 3, []ent{{0, 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SelectRows([]int{1})
}

func TestSelectRowsMatchesParentProducts(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows, cols := 2+r.Intn(20), 1+r.Intn(10)
		b := NewBuilder(cols)
		for i := 0; i < rows; i++ {
			n := r.Intn(cols)
			idx := r.SampleWithoutReplacement(cols, n)
			val := make([]float64, n)
			for k := range val {
				val[k] = r.Float64()
			}
			b.AddRow(idx, val)
		}
		m := b.Build()
		sel := r.SampleWithoutReplacement(rows, 1+r.Intn(rows))
		s := m.SelectRows(sel)
		x := make([]float64, cols)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		full := m.MulVec(nil, x)
		sub := s.MulVec(nil, x)
		for k, i := range sel {
			if math.Abs(sub[k]-full[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVec(b *testing.B) {
	r := rng.New(1)
	const rows, cols, perRow = 20000, 2000, 30
	bld := NewBuilder(cols)
	for i := 0; i < rows; i++ {
		idx := r.SampleWithoutReplacement(cols, perRow)
		val := make([]float64, perRow)
		for k := range val {
			val[k] = r.Float64()
		}
		bld.AddRow(idx, val)
	}
	m := bld.Build()
	x := make([]float64, cols)
	for i := range x {
		x[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(nil, x)
	}
}
