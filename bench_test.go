// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (run the full regeneration via cmd/experiments;
// these measure the cost of each experiment's computational core), plus
// ablation benchmarks for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
package mgba_test

import (
	"context"
	"fmt"
	"testing"

	"mgba/internal/aocv"
	"mgba/internal/closure"
	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/fixtures"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/pathsel"
	"mgba/internal/pba"
	"mgba/internal/rng"
	"mgba/internal/solver"
	"mgba/internal/sta"
)

// benchDesign generates a mid-sized cone design once per benchmark binary.
func benchDesign(b *testing.B) *graph.Graph {
	b.Helper()
	cfg := gen.Suite()[2] // D3
	cfg.Gates, cfg.FFs = cfg.Gates/2, cfg.FFs/2
	d, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchProblem assembles the calibration problem of the bench design.
func benchProblem(b *testing.B) *solver.Problem {
	b.Helper()
	g := benchDesign(b)
	opt := core.DefaultOptions()
	opt.Method = core.MethodSCGRS
	m, err := core.Calibrate(context.Background(), g, sta.DefaultConfig(), opt)
	if err != nil {
		b.Fatal(err)
	}
	if m.Problem == nil {
		b.Fatal("no violated paths in bench design")
	}
	return m.Problem
}

// E-T1: the AOCV derating lookup behind Table 1.
func BenchmarkTable1Lookup(b *testing.B) {
	set := aocv.Default(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = set.Late.Lookup(float64(i%48)+1, float64(i%700))
	}
}

// E-F2: the Fig. 2 worked example — build, analyze, enumerate and retime.
func BenchmarkFig2DepthGap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, info, cfg, err := fixtures.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		g, err := graph.Build(d)
		if err != nil {
			b.Fatal(err)
		}
		r := sta.Analyze(g, cfg)
		an := pba.NewAnalyzer(r)
		p := an.WorstPath(g.FFIndex(info.FF4))
		if tm := an.Retime(p); tm.Arrival < 689.99 || tm.Arrival > 690.01 {
			b.Fatalf("worked example drifted: %v", tm.Arrival)
		}
	}
}

// E-S32: the two path-selection schemes of §3.2 under the same budget.
func BenchmarkPathSelectionPerEndpoint(b *testing.B) {
	g := benchDesign(b)
	an := pba.NewAnalyzer(sta.Analyze(g, sta.DefaultConfig()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pathsel.PerEndpointTopK(an, 20, 0)
	}
}

func BenchmarkPathSelectionGlobal(b *testing.B) {
	g := benchDesign(b)
	an := pba.NewAnalyzer(sta.Analyze(g, sta.DefaultConfig()))
	budget := len(pathsel.PerEndpointTopK(an, 20, 0).Paths)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pathsel.GlobalTopM(an, budget, 500)
	}
}

// E-F3: the exact solve that produces the Fig. 3 sparsity histogram.
func BenchmarkFig3FullSolve(b *testing.B) {
	p := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := solver.FullSolve(context.Background(), p, 8, 300, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}

// E-F4: one point of the Fig. 4 sweep — solve a uniformly sampled subset.
func BenchmarkFig4RowSweep(b *testing.B) {
	p := benchProblem(b)
	r := rng.New(7)
	rows := p.A.Rows() / 4
	if rows < 64 {
		rows = 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := r.SampleWithoutReplacement(p.A.Rows(), rows)
		sub := p.SubProblem(sel)
		if _, _, err := solver.SCG(context.Background(), sub, solver.DefaultOptions(), rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// E-T4: the three solvers of Table 4 on the same calibration problem.
func BenchmarkTable4GD(b *testing.B) {
	p := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := solver.GD(context.Background(), p, solver.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4SCG(b *testing.B) {
	p := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := solver.SCG(context.Background(), p, solver.DefaultOptions(), rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4SCGRS(b *testing.B) {
	p := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := solver.SCGRS(context.Background(), p, solver.DefaultOptions(), rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// E-T3: the full calibration + pass-ratio evaluation behind Table 3.
func BenchmarkTable3PassRatio(b *testing.B) {
	g := benchDesign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.Calibrate(context.Background(), g, sta.DefaultConfig(), core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Evaluate("mgba"); err != nil {
			b.Fatal(err)
		}
	}
}

// E-T2 / E-T5: the two closure flows behind Tables 2 and 5.
func BenchmarkTable2ClosureGBA(b *testing.B) {
	benchClosure(b, closure.TimerGBA)
}

func BenchmarkTable2ClosureMGBA(b *testing.B) {
	benchClosure(b, closure.TimerMGBA)
}

func benchClosure(b *testing.B, timer closure.TimerKind) {
	b.Helper()
	cfg := gen.Suite()[2]
	cfg.Gates, cfg.FFs = cfg.Gates/2, cfg.FFs/2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := gen.Generate(cfg) // fresh design: Optimize mutates it
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := closure.Optimize(d, closure.DefaultOptions(timer)); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: Eq. (11) norm-proportional vs uniform row sampling inside SCG.
func BenchmarkSCGRowProbabilityNorm(b *testing.B) {
	benchSCGSampling(b, false)
}

func BenchmarkSCGRowProbabilityUniform(b *testing.B) {
	benchSCGSampling(b, true)
}

func benchSCGSampling(b *testing.B, uniform bool) {
	b.Helper()
	p := benchProblem(b)
	opt := solver.DefaultOptions()
	opt.UniformRowSampling = uniform
	var obj float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := solver.SCG(context.Background(), p, opt, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		obj += st.Objective
	}
	b.ReportMetric(obj/float64(b.N), "objective/op")
}

// Ablation: Algorithm 1's doubling schedule vs one oversized sample.
func BenchmarkDoublingVsOneShot(b *testing.B) {
	p := benchProblem(b)
	b.Run("doubling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.SCGRS(context.Background(), p, solver.DefaultOptions(), rng.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		opt := solver.DefaultOptions()
		opt.MinRows = p.A.Rows() // first round solves the full system
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.SCGRS(context.Background(), p, opt, rng.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: penalty weight of Eq. (6) vs solve cost.
func BenchmarkPenaltySweep(b *testing.B) {
	base := benchProblem(b)
	for _, pen := range []float64{0, 10, 100, 1000} {
		p := *base
		p.Penalty = pen
		b.Run(penaltyName(pen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.SCGRS(context.Background(), &p, solver.DefaultOptions(), rng.New(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func penaltyName(p float64) string {
	switch p {
	case 0:
		return "w0"
	case 10:
		return "w10"
	case 100:
		return "w100"
	default:
		return "w1000"
	}
}

// Ablation: incremental timing update vs full re-analysis after a resize —
// the mechanism that makes the closure loop affordable (§3.4).
func BenchmarkIncrementalUpdate(b *testing.B) {
	g := benchDesign(b)
	cfg := sta.DefaultConfig()
	r := sta.Analyze(g, cfg)
	// Pick a combinational gate with an upsize available.
	var target int = -1
	for _, v := range g.Topo {
		in := g.D.Instances[v]
		if !in.IsFF() && g.D.Lib.Upsize(in.Cell) != nil {
			target = int(v)
			break
		}
	}
	if target < 0 {
		b.Fatal("no resizable gate")
	}
	inst := g.D.Instances[target]
	up := g.D.Lib.Upsize(inst.Cell)
	down := inst.Cell
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				g.D.Resize(inst, up)
			} else {
				g.D.Resize(inst, down)
			}
			r.Update([]int{target})
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				g.D.Resize(inst, up)
			} else {
				g.D.Resize(inst, down)
			}
			r = sta.Analyze(g, cfg)
		}
	})
}

// recalibrateFixture cold-calibrates the bench design, then ages it by a
// batch of accepted upsizes along the selected paths, mirroring what the
// closure flow's repair phase does between calibrations. It returns the
// graph, the pre-transform weights and the dirty set a recalibration gets.
func recalibrateFixture(b *testing.B) (*graph.Graph, []float64, []int) {
	b.Helper()
	g := benchDesign(b)
	m0, err := core.Calibrate(context.Background(), g, sta.DefaultConfig(), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	if len(m0.Selection.Paths) == 0 {
		b.Fatal("no violated paths in bench design")
	}
	warm := m0.Weights
	d := g.D
	seen := make(map[int]bool)
	var dirty []int
	note := func(id int) {
		if !seen[id] {
			seen[id] = true
			dirty = append(dirty, id)
		}
	}
	resized := 0
	for _, p := range m0.Selection.Paths {
		if resized == 60 {
			break
		}
		for _, id := range p.Cells {
			if resized == 60 {
				break
			}
			inst := d.Instances[id]
			if seen[id] || inst.IsFF() {
				continue
			}
			to := d.Lib.Upsize(inst.Cell)
			if to == nil || d.Resize(inst, to) != nil {
				continue
			}
			resized++
			note(id)
			for _, nid := range inst.Inputs {
				if drv := d.Nets[nid].Driver; drv >= 0 && !g.IsClock(drv) {
					note(drv)
				}
			}
		}
	}
	if resized == 0 {
		b.Fatal("no gate on the bench selection could be upsized")
	}
	return g, warm, dirty
}

// BenchmarkRecalibrateCold: the full calibration pipeline — serial
// enumeration, full CSR assembly, solve from dx0 = 0 — re-run from
// scratch against the aged design, which is what every recalibration
// costs without the persistent Calibrator.
func BenchmarkRecalibrateCold(b *testing.B) {
	g, _, _ := recalibrateFixture(b)
	sess := engine.NewSession(g)
	cfg, opt := sta.DefaultConfig(), core.DefaultOptions()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.CalibrateWithSession(ctx, sess, cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		m.MGBA.Release()
		if m.GBA != m.MGBA {
			m.GBA.Release()
		}
	}
}

// BenchmarkRecalibrateIncremental: the persistent Calibrator recalibrating
// the same aged state from its cache and the dirty set, re-solving from
// the previous fit — the tentpole claim of the incremental session.
func BenchmarkRecalibrateIncremental(b *testing.B) {
	g, warm, dirty := recalibrateFixture(b)
	cal, err := core.NewCalibrator(engine.NewSession(g), sta.DefaultConfig(), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cal.SetWarmWeights(warm)
	ctx := context.Background()
	if _, err := cal.Calibrate(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := cal.Recalibrate(ctx, dirty)
		if err != nil {
			b.Fatal(err)
		}
		if m.GBA != m.MGBA {
			m.MGBA.Release()
		}
	}
	if cal.Stats().Incremental == 0 {
		b.Fatal("benchmark never took the incremental path")
	}
}

// benchBigProblem row-tiles the bench calibration system until it crosses
// the solver kernels' parallel cutoff, so the blocked paths are what gets
// measured (the raw bench system is deliberately below the cutoff, where
// the kernels stay serial).
func benchBigProblem(b *testing.B) *solver.Problem {
	b.Helper()
	base := benchProblem(b)
	tile := 1
	for base.A.NNZ()*tile < 4*(1<<15) {
		tile *= 2
	}
	sel := make([]int, 0, base.A.Rows()*tile)
	for t := 0; t < tile; t++ {
		for i := 0; i < base.A.Rows(); i++ {
			sel = append(sel, i)
		}
	}
	return base.SubProblem(sel)
}

// PR4: the Eq. (6) solve on a calibration-scale system at serial versus
// 8-worker kernels. Results are bit-identical across the legs; the delta
// is pure wall-clock.
func BenchmarkSolverSCGRS(b *testing.B) {
	p := benchBigProblem(b)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("par%d", workers), func(b *testing.B) {
			p.A.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.SCGRS(context.Background(), p, solver.DefaultOptions(), rng.New(42)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// PR4: the fused one-pass Objective+Gradient kernel — the steady-state
// inner loop of GD — which must run allocation-free once the Problem
// scratch is warm.
func BenchmarkSolverObjectiveGradient(b *testing.B) {
	p := benchBigProblem(b)
	x := make([]float64, p.A.Cols())
	g := make([]float64, p.A.Cols())
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("par%d", workers), func(b *testing.B) {
			p.A.SetParallelism(workers)
			p.ObjectiveGradient(g, x) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ObjectiveGradient(g, x)
			}
		})
	}
}
