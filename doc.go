// Package mgba is a from-scratch reproduction of "A General Graph Based
// Pessimism Reduction Framework for Design Optimization of Timing Closure"
// (Peng et al., DAC 2018): a modified graph-based static timing analysis
// (mGBA) that fits per-gate weighting factors so fast graph-based slacks
// match golden path-based slacks on the critical paths, embedded into a
// post-route timing-closure optimization flow.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), with runnable binaries under cmd/ and worked examples under
// examples/. The benchmark harness in bench_test.go regenerates every
// table and figure of the paper's evaluation; cmd/experiments prints them.
package mgba
