// Depthgap walks through the paper's §2.2 worked example (Fig. 1/Fig. 2):
// the same six-gate path priced at 690 ps by PBA and 740 ps by GBA, because
// GBA assigns every gate the worst (minimum) cell depth of any path through
// it before looking up the AOCV derate of Table 1.
//
//	go run ./examples/depthgap
package main

import (
	"fmt"
	"log"

	"mgba/internal/fixtures"
	"mgba/internal/graph"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

func main() {
	d, info, cfg, err := fixtures.Fig2()
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		log.Fatal(err)
	}
	r := sta.Analyze(g, cfg)
	an := pba.NewAnalyzer(r)

	fmt.Println("The Fig. 2 circuit (every gate exactly 100 ps, Table 1 derates):")
	fmt.Println()
	fmt.Println("  FF1 -> g1 -> g2 -> g3 -> g4 -> g5 -> g6 -> FF4.D   (main path)")
	fmt.Println("                      g4 -> k  -> FF3.D              (5-gate branch)")
	fmt.Println("  FF2 -> h  -> g4                                    (shallow join)")
	fmt.Println()

	p := an.WorstPath(g.FFIndex(info.FF4))
	tm := an.Retime(p)

	fmt.Println("gate   GBA depth  GBA derate | PBA depth  PBA derate")
	var gbaSum float64
	for i, id := range info.Gates {
		fmt.Printf("g%d     %9d  %10.2f | %9d  %10.2f\n",
			i+1, r.Depths.GBA[id], r.Derate[id], tm.Depth, tm.LateDerate)
		gbaSum += 100 * r.Derate[id]
	}
	fmt.Println()
	fmt.Printf("GBA path delay (Eq. 3): 100 x (%.2f+%.2f+%.2f+%.2f+%.2f+%.2f) = %.0f ps\n",
		r.Derate[info.Gates[0]], r.Derate[info.Gates[1]], r.Derate[info.Gates[2]],
		r.Derate[info.Gates[3]], r.Derate[info.Gates[4]], r.Derate[info.Gates[5]], gbaSum)
	fmt.Printf("PBA path delay (Eq. 2): 100 x %.2f x %d = %.0f ps\n",
		tm.LateDerate, tm.Depth, tm.Arrival)
	fmt.Printf("pessimism gap: %.0f ps on a single path\n", p.GBAArrival-tm.Arrival)
	fmt.Println()

	// The gap comes from g4 (worst depth 3: the shallow FF2 join) and from
	// g5/g6 (worst depth 4 via the FF3 branch) — show the other paths too.
	for _, ff := range []int{info.FF3, info.FF4} {
		fi := g.FFIndex(ff)
		for _, q := range an.KWorst(fi, 5, nil) {
			qt := an.Retime(q)
			fmt.Printf("path %s -> %s: depth %d, GBA %.0f ps vs PBA %.0f ps\n",
				d.Instances[q.Launch].Name, d.Instances[q.Capture].Name,
				qt.Depth, q.GBAArrival, qt.Arrival)
		}
	}
}
