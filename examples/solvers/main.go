// Solvers compares the three optimization solvers of §3.3 on one design's
// calibration problem: conventional gradient descent, the stochastic
// conjugate gradient of Algorithm 2, and Algorithm 1's uniform row sampling
// stacked on top — the comparison behind Table 4.
//
//	go run ./examples/solvers
package main

import (
	"context"
	"fmt"
	"log"

	"mgba/internal/core"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/sta"
)

func main() {
	cfg := gen.Suite()[1] // D2: the largest suite design
	d, err := gen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %s\n\n", d.Name, d.Stats())

	methods := []core.Method{core.MethodGD, core.MethodSCG, core.MethodSCGRS}
	var gdTime float64
	fmt.Println("solver      paths   mse(1e-3)   pass(%)   iterations   rows   time        speedup")
	for _, method := range methods {
		opt := core.DefaultOptions()
		opt.Method = method
		m, err := core.Calibrate(context.Background(), g, sta.DefaultConfig(), opt)
		if err != nil {
			log.Fatal(err)
		}
		mt, err := m.Evaluate("mgba")
		if err != nil {
			log.Fatal(err)
		}
		secs := m.Stats.Elapsed.Seconds()
		if method == core.MethodGD {
			gdTime = secs
		}
		fmt.Printf("%-10s  %5d   %9.3f   %7.2f   %10d   %4d   %-9v   %.2fx\n",
			method, mt.Paths, mt.MSE*1e3, mt.PassRatio*100,
			m.Stats.Iters, m.Stats.RowsUsed, m.Stats.Elapsed.Round(1e5), gdTime/secs)
	}
	fmt.Println("\nThe paper's Table 4 reports the same ordering on its industrial designs:")
	fmt.Println("similar accuracy for all three, SCG 2.71x over GD, SCG+RS 13.82x over GD")
	fmt.Println("(the row-sampling speedup grows with the path count; see EXPERIMENTS.md).")
}
