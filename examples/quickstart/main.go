// Quickstart: generate a design, run GBA, calibrate mGBA against PBA and
// compare the three analyses on the worst paths.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mgba/internal/core"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

func main() {
	// 1. Synthesize a placed register-to-register design (a stand-in for
	//    an industrial netlist) with a clock period at which ~40% of the
	//    endpoints violate under GBA.
	d, err := gen.Generate(gen.Toy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %q: %s, clock period %.0f ps\n\n", d.Name, d.Stats(), d.ClockPeriod)

	// 2. Build the timing graph and run graph-based analysis with the full
	//    pessimism stack: worst-depth AOCV derating, worst-slew merging,
	//    conservative CRPR.
	g, err := graph.Build(d)
	if err != nil {
		log.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	fmt.Printf("GBA: WNS %.1f ps, TNS %.1f ps, %d violating endpoints\n",
		r.WNS, r.TNS, len(r.ViolatingEndpoints()))

	// 3. Calibrate the mGBA weighting factors (the paper's contribution):
	//    per-endpoint worst-path selection, PBA retiming as golden targets,
	//    stochastic-CG fit with row sampling.
	m, err := core.Calibrate(context.Background(), g, sta.DefaultConfig(), core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mGBA: fitted %d paths over %d gate weights in %v\n",
		len(m.Selection.Paths), len(m.Columns), m.Stats.Elapsed)
	fmt.Printf("mGBA: WNS %.1f ps, TNS %.1f ps, %d violating endpoints\n\n",
		m.MGBA.WNS, m.MGBA.TNS, len(m.MGBA.ViolatingEndpoints()))

	// 4. Accuracy against golden PBA over the selected paths.
	gba, _ := m.Evaluate("gba")
	mgba, _ := m.Evaluate("mgba")
	fmt.Printf("pass ratio (within 5%% or 5 ps of PBA): GBA %.1f%% -> mGBA %.1f%%\n",
		gba.PassRatio*100, mgba.PassRatio*100)
	fmt.Printf("modelling error phi (Eq. 10):          GBA %.2f%% -> mGBA %.2f%%\n\n",
		gba.Phi*100, mgba.Phi*100)

	// 5. Inspect a few individual paths: GBA slack vs mGBA slack vs PBA.
	an := pba.NewAnalyzer(m.GBA)
	mgbaSlacks, _ := m.PathSlacks("mgba")
	fmt.Println("worst path per endpoint (ps):")
	fmt.Println("  GBA slack   mGBA slack   PBA slack   depth")
	seen := map[int]bool{}
	shown := 0
	for i, p := range m.Selection.Paths {
		if seen[p.Capture] {
			continue
		}
		seen[p.Capture] = true
		tm := an.Retime(p)
		fmt.Printf("  %9.1f   %10.1f   %9.1f   %5d\n",
			p.GBASlack, mgbaSlacks[i], tm.Slack, tm.Depth)
		if shown++; shown >= 6 {
			break
		}
	}
}
