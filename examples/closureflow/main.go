// Closureflow runs the paper's §3.4 experiment end-to-end on one design:
// the same post-route timing-closure optimization twice, once with original
// GBA embedded and once with calibrated mGBA, then compares the final
// quality of results — the comparison behind Tables 2 and 5.
//
//	go run ./examples/closureflow
package main

import (
	"fmt"
	"log"

	"mgba/internal/closure"
	"mgba/internal/fixtures"
	"mgba/internal/gen"
)

func main() {
	cfg := gen.Suite()[7] // D8: the heavily reconvergent (most pessimistic) design
	fmt.Printf("optimizing %s twice from the identical start (seed %d)\n\n", cfg.Name, cfg.Seed)

	results := map[closure.TimerKind]*closure.Result{}
	for _, timer := range []closure.TimerKind{closure.TimerGBA, closure.TimerMGBA} {
		d, err := gen.Generate(cfg) // same seed -> identical design
		if err != nil {
			log.Fatal(err)
		}
		before := d.Stats()
		res, err := closure.Optimize(d, closure.DefaultOptions(timer))
		if err != nil {
			log.Fatal(err)
		}
		results[timer] = res
		fmt.Printf("%s flow:\n", timer)
		fmt.Printf("  transforms: %d upsized, %d downsized, %d buffers\n",
			res.Upsized, res.Downsized, res.BuffersAdded)
		fmt.Printf("  area    %.1f -> %.1f um^2\n", before.Area, res.Area)
		fmt.Printf("  leakage %.1f -> %.1f nW\n", before.Leakage, res.Leakage)
		fmt.Printf("  signoff (PBA): WNS %.1f ps, TNS %.1f ps, %d endpoints left violating (timer view)\n",
			res.SignoffWNS, res.SignoffTNS, res.ViolatedEndpoints)
		fmt.Printf("  runtime %v", res.Elapsed.Round(1e6))
		if timer == closure.TimerMGBA {
			fmt.Printf(" (of which %v calibrating mGBA over %d calibrations)",
				res.CalibElapsed.Round(1e6), res.Calibrations)
		}
		fmt.Println()
		fmt.Println()
	}

	gba, mgba := results[closure.TimerGBA], results[closure.TimerMGBA]
	impr := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		return (a - b) / a * 100
	}
	fmt.Println("mGBA flow vs GBA flow (positive = mGBA better, the paper's Table 2 convention):")
	fmt.Printf("  area    %+.2f%%\n", impr(gba.Area, mgba.Area))
	fmt.Printf("  leakage %+.2f%%\n", impr(gba.Leakage, mgba.Leakage))
	fmt.Printf("  upsizes %+.2f%% fewer fixes\n", impr(float64(gba.Upsized), float64(mgba.Upsized)))

	retimingDemo()
}

// retimingDemo shows the pluggable transform registry on a design that
// sizing and buffering alone cannot close: every gate of the pipeline is
// already at maximum drive, so the only fix is moving registers into the
// deep combinational stage. Enabling the retime transform closes it; the
// dirty sets of the accepted slides drive incremental recalibration of the
// mGBA model across the connectivity changes.
func retimingDemo() {
	fmt.Println()
	fmt.Println("retiming demo: a register-bound pipeline (all gates at max drive)")

	for _, names := range [][]string{nil, {"upsize", "buffer", "retime"}} {
		d, err := fixtures.RetimePipeline(4)
		if err != nil {
			log.Fatal(err)
		}
		opt := closure.DefaultOptions(closure.TimerMGBA)
		opt.Transforms = names // nil: the default upsize+buffer registry
		res, err := closure.Optimize(d, opt)
		if err != nil {
			log.Fatal(err)
		}
		label := "default registry (upsize, buffer)"
		if names != nil {
			label = "with retiming enabled"
		}
		fmt.Printf("  %-34s %d retimes, WNS %.1f ps, %d endpoints violating\n",
			label+":", res.Retimed(), res.TimerWNS, res.ViolatedEndpoints)
	}
}
