module mgba

go 1.22
