#!/usr/bin/env bash
# Smoke-test the -debug-addr endpoint: run the closure flow on a small
# fixture with the debug server on a free port, scrape /debug/vars and
# /debug/summary while the server is held open, and assert a non-empty
# metric snapshot that includes closure counters.
set -euo pipefail

bin=$(mktemp -d)/closure
go build -o "$bin" ./cmd/closure

log=$(mktemp)
"$bin" -design toy -timer gba -debug-addr 127.0.0.1:0 -debug-hold 20s \
    >/dev/null 2>"$log" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*debug server listening on \(.*\)/\1/p' "$log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "smoke_debug: server address never appeared" >&2
    cat "$log" >&2
    exit 1
fi

vars=""
for _ in $(seq 1 100); do
    vars=$(curl -fsS "http://$addr/debug/vars" 2>/dev/null || true)
    case "$vars" in
    *'"closure.transforms"'*) break ;;
    esac
    sleep 0.2
done
case "$vars" in
*'"closure.transforms"'*) ;;
*)
    echo "smoke_debug: /debug/vars never produced closure metrics:" >&2
    echo "$vars" >&2
    exit 1
    ;;
esac

summary=$(curl -fsS "http://$addr/debug/summary")
case "$summary" in
*'run summary'*) ;;
*)
    echo "smoke_debug: /debug/summary missing the summary table:" >&2
    echo "$summary" >&2
    exit 1
    ;;
esac

echo "smoke_debug: ok ($addr)"
echo "$vars" | head -n 12

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# Closure-transform smoke: run the full registry (upsize, buffer, retime)
# on the register-bound fixture and assert via /debug/vars that the
# retiming transform was actually accepted, i.e. the per-kind counters are
# live end to end.
log2=$(mktemp)
out2=$(mktemp)
"$bin" -design retimetoy -timer gba -transforms upsize,buffer,retime \
    -debug-addr 127.0.0.1:0 -debug-hold 20s >"$out2" 2>"$log2" &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*debug server listening on \(.*\)/\1/p' "$log2")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "smoke_debug: transform-smoke server address never appeared" >&2
    cat "$log2" >&2
    exit 1
fi

retimes=""
for _ in $(seq 1 100); do
    vars=$(curl -fsS "http://$addr/debug/vars" 2>/dev/null || true)
    retimes=$(printf '%s' "$vars" |
        sed -n 's/.*"closure\.transforms\.retime": \([0-9][0-9]*\).*/\1/p')
    [ -n "$retimes" ] && [ "$retimes" -gt 0 ] && break
    sleep 0.2
done
if [ -z "$retimes" ] || [ "$retimes" -eq 0 ]; then
    echo "smoke_debug: no retimes recorded on the register-bound fixture:" >&2
    printf '%s\n' "$vars" >&2
    cat "$out2" >&2
    exit 1
fi

case "$(cat "$out2")" in
*retimed*) ;;
*)
    echo "smoke_debug: closure report lost its retimed column:" >&2
    cat "$out2" >&2
    exit 1
    ;;
esac

echo "smoke_debug: transform smoke ok ($addr, $retimes retimes)"
