#!/usr/bin/env bash
# Smoke-test the calibration daemon end to end, including crash recovery:
# start calibd on a free port with a snapshot directory, create a session
# on the toy design (plus a multi-corner one), apply sizing batches, read
# the slacks, SIGTERM the daemon (graceful drain + snapshot), restart it
# on the same snapshot directory, and assert the resumed sessions serve
# byte-identical slacks and keep their corner sets.
set -euo pipefail

tmp=$(mktemp -d)
bin="$tmp/calibd"
snaps="$tmp/snapshots"
go build -o "$bin" ./cmd/calibd

start_daemon() {
    local log="$1"
    "$bin" -addr 127.0.0.1:0 -snapshots "$snaps" >"$log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|.*listening on http://\(.*\)|\1|p' "$log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "smoke_calibd: daemon address never appeared" >&2
        cat "$log" >&2
        exit 1
    fi
}

log1=$(mktemp)
start_daemon "$log1"
trap 'kill "$pid" 2>/dev/null || true' EXIT

created=$(curl -fsS -X POST "http://$addr/v1/sessions" \
    -d '{"id":"smoke","design":"toy"}')
case "$created" in
*'"calibrated":true'*) ;;
*)
    echo "smoke_calibd: create did not calibrate: $created" >&2
    exit 1
    ;;
esac

# Instances 225-229 are combinational gates of the (deterministic) toy
# design; low IDs are its clock tree, which the API rightly refuses to
# touch.
batch=$(curl -fsS -X POST "http://$addr/v1/sessions/smoke/batch" \
    -d '{"ops":[{"op":"upsize","instance":225},{"op":"upsize","instance":226},{"op":"upsize","instance":227},{"op":"upsize","instance":228},{"op":"upsize","instance":229}]}')
case "$batch" in
*'"applied":true'*) ;;
*)
    echo "smoke_calibd: batch applied nothing: $batch" >&2
    exit 1
    ;;
esac

# A second session carrying a two-corner set: the corner set is part of
# the session identity and must survive the snapshot/resume cycle below.
mc=$(curl -fsS -X POST "http://$addr/v1/sessions" \
    -d '{"id":"mc","design":"toy","corners":[{"name":"typ"},{"name":"slow","derate_scale":1.15,"uncertainty_ps":10}]}')
case "$mc" in
*'"calibrated":true'*) ;;
*)
    echo "smoke_calibd: multi-corner create did not calibrate: $mc" >&2
    exit 1
    ;;
esac

mcbatch=$(curl -fsS -X POST "http://$addr/v1/sessions/mc/batch" \
    -d '{"ops":[{"op":"upsize","instance":225},{"op":"upsize","instance":226}]}')
case "$mcbatch" in
*'"applied":true'*) ;;
*)
    echo "smoke_calibd: multi-corner batch applied nothing: $mcbatch" >&2
    exit 1
    ;;
esac

before=$(curl -fsS "http://$addr/v1/sessions/smoke/slacks")
case "$before" in
*'"slacks_ps":['*) ;;
*)
    echo "smoke_calibd: no slack vector before restart: $before" >&2
    exit 1
    ;;
esac

# Graceful shutdown: drain and snapshot, then make sure the process is gone.
kill -TERM "$pid"
wait "$pid" 2>/dev/null || true

log2=$(mktemp)
start_daemon "$log2"
trap 'kill "$pid" 2>/dev/null || true' EXIT

status=$(curl -fsS "http://$addr/v1/sessions/smoke")
case "$status" in
*'"applied_batches":1'*) ;;
*)
    echo "smoke_calibd: resumed session lost its batch counter: $status" >&2
    exit 1
    ;;
esac

mcstatus=$(curl -fsS "http://$addr/v1/sessions/mc")
case "$mcstatus" in
*'"corners":["typ","slow"]'*) ;;
*)
    echo "smoke_calibd: resumed session lost its corner set: $mcstatus" >&2
    exit 1
    ;;
esac

after=$(curl -fsS "http://$addr/v1/sessions/smoke/slacks")
if [ "$before" != "$after" ]; then
    echo "smoke_calibd: resumed slacks differ from pre-restart slacks" >&2
    echo "before: $(printf '%s' "$before" | head -c 300)" >&2
    echo "after:  $(printf '%s' "$after" | head -c 300)" >&2
    exit 1
fi

curl -fsS -X DELETE "http://$addr/v1/sessions/smoke" >/dev/null
curl -fsS -X DELETE "http://$addr/v1/sessions/mc" >/dev/null

kill -TERM "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
rm -rf "$tmp"

echo "smoke_calibd: ok (resumed slacks byte-identical across restart; corner set preserved)"
