#!/usr/bin/env bash
# Smoke-test the scale layer end to end on the 100k-gate design:
#
#   1. the MGBA_SCALE-gated tests — the closure smoke (generate, cold
#      calibrate, ten transforms with a mid-flow recalibration) and the
#      streamed-vs-materialized bit-identity check at 100k — under a hard
#      wall-clock ceiling;
#   2. the benchscale artifact: experiments -run benchscale -json must
#      write a non-empty BENCH_scale.json (quick mode keeps CI fast; the
#      full 100k measurement runs locally with MGBA_SCALE_FULL=1).
set -euo pipefail
cd "$(dirname "$0")/.."

timeout="${MGBA_SCALE_TIMEOUT:-10m}"

MGBA_SCALE=1 go test -timeout "$timeout" -run \
    'TestScaleSmoke100k|TestStreamedColdBitIdenticalLarge' \
    ./internal/closure/ ./internal/core/ -v

quick="-quick"
if [ -n "${MGBA_SCALE_FULL:-}" ]; then
    quick=""
fi
rm -f BENCH_scale.json
go run ./cmd/experiments -run benchscale $quick -json -q
test -s BENCH_scale.json
echo "smoke_scale: OK"
