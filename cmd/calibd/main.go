// Command calibd is the fault-tolerant calibration daemon: it hosts many
// concurrent mGBA calibrator sessions behind an HTTP/JSON API.
//
//	calibd -addr :8080 -snapshots /var/lib/calibd
//
// A typical session (see README.md for the full transcript):
//
//	POST   /v1/sessions                    {"id":"s1","design":"toy"}
//	POST   /v1/sessions/s1/batch           {"ops":[{"op":"upsize","instance":42}]}
//	GET    /v1/sessions/s1/slacks
//	DELETE /v1/sessions/s1
//
// Requests honor an X-Deadline-Ms header: a calibration that overruns its
// deadline returns the degradation ladder's never-optimistic result with
// HTTP 200 instead of dropping the connection. Saturation is refused
// early with 429 + Retry-After. On SIGTERM/SIGINT the daemon drains
// in-flight requests, snapshots every session, and exits; a restarted
// daemon resumes each persisted session bit-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mgba/internal/core"
	"mgba/internal/obs"
	"mgba/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port, printed to stdout)")
	snapshots := flag.String("snapshots", "", "directory for crash-safe session snapshots (empty: sessions are memory-only)")
	maxSessions := flag.Int("max-sessions", 0, "resident session cap; least recently used sessions are snapshotted and evicted beyond it (0: default)")
	maxInflight := flag.Int("max-inflight", 0, "concurrently admitted requests before 429 (0: default)")
	maxQueue := flag.Int("max-queue", 0, "queued requests per session before 429 (0: default)")
	idle := flag.Duration("idle-timeout", 0, "evict sessions untouched this long (0: default)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline when no X-Deadline-Ms is sent (0: default)")
	snapEvery := flag.Duration("snapshot-every", 0, "write-behind snapshot cadence (0: snapshot synchronously after every batch)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
	par := flag.Int("par", 0, "worker count for timing and solver kernels (0: GOMAXPROCS)")
	viewpair := flag.String("viewpair", "", "default view pair for new sessions: gba-pba (default) or preroute; a session's view_pair field overrides")
	corners := flag.String("corners", "", "default corner set for new sessions: name[:derate-scale[:uncertainty-ps]],... (empty: single-corner); a session's corners field overrides")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof and /debug/summary on this host:port")
	flag.Parse()

	if _, err := core.LookupViewPair(*viewpair); err != nil {
		fail(err)
	}
	cornerSet, err := core.ParseCorners(*corners)
	if err != nil {
		fail(err)
	}

	cfg := serve.DefaultConfig()
	cfg.SnapshotDir = *snapshots
	cfg.Core.ViewPair = *viewpair
	cfg.Core.Corners = cornerSet
	if *maxSessions > 0 {
		cfg.MaxSessions = *maxSessions
	}
	if *maxInflight > 0 {
		cfg.MaxInFlight = *maxInflight
	}
	if *maxQueue > 0 {
		cfg.MaxQueue = *maxQueue
	}
	if *idle > 0 {
		cfg.IdleTimeout = *idle
	}
	if *deadline > 0 {
		cfg.DefaultDeadline = *deadline
	}
	cfg.SnapshotEvery = *snapEvery
	cfg.Parallelism = *par

	if *debugAddr != "" {
		dbg, err := obs.Serve(*debugAddr)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "calibd: debug server on http://%s\n", dbg.Addr())
		defer dbg.Close()
	}

	sv, err := serve.New(cfg)
	if err != nil {
		fail(err)
	}
	if err := sv.Listen(*addr); err != nil {
		fail(err)
	}
	// The bound address goes to stdout (and is flushed) so scripts using
	// port 0 can read the real port.
	fmt.Printf("calibd: listening on http://%s\n", sv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	s := <-sig
	fmt.Fprintf(os.Stderr, "calibd: %v: draining and snapshotting\n", s)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "calibd: shutdown complete")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "calibd:", err)
	os.Exit(1)
}
