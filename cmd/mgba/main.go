// Command mgba calibrates a modified-GBA model on one synthetic design and
// reports its accuracy against golden PBA:
//
//	mgba -design toy              # the small §3.2 design
//	mgba -design D3 -method scgrs # a suite design with the paper's solver
//	mgba -design D8 -method gd -k 10
//
// The output mirrors the per-design rows of Tables 3 and 4: selected path
// count, GBA/mGBA pass ratios, modelling mse, solver iterations and time.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"mgba/internal/core"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netio"
	"mgba/internal/netlist"
	"mgba/internal/obs"
	"mgba/internal/prof"
	"mgba/internal/report"
	"mgba/internal/sta"
)

func main() {
	design := flag.String("design", "toy", "design to calibrate: toy or D1..D10")
	method := flag.String("method", "scgrs", "solver: gd, scg, scgrs, full")
	k := flag.Int("k", 20, "k': worst paths selected per endpoint")
	viewpair := flag.String("viewpair", "", "view pair to calibrate: gba-pba (default) or preroute (cross-stage: pre-route analysis corrected against a deterministically routed twin; implies strict Eq. (5) enforcement)")
	corners := flag.String("corners", "", "multi-corner set, name[:derate-scale[:uncertainty-ps]],... e.g. typ,slow:1.15:10; paths are enumerated once on the first corner and every corner is fitted (empty: single-corner)")
	jointfit := flag.Bool("jointfit", false, "solve all corners as one stacked system sharing the sparsity pattern instead of independent per-corner fits")
	seed := flag.Uint64("seed", 0, "override the design seed (0 keeps the preset)")
	epsilon := flag.Float64("epsilon", 0.02, "optimism tolerance of Eq. (5)")
	saveFile := flag.String("save", "", "write the generated design as JSON to this file (atomic)")
	loadFile := flag.String("load", "", "load a design saved with -save instead of generating")
	timeout := flag.Duration("timeout", 0, "bound the calibration wall-clock (0: no limit); a timed-out run reports its partial fit")
	par := flag.Int("par", 0, "worker count for timing propagation, path enumeration and solver kernels (0: GOMAXPROCS, 1: serial; the result is identical at every setting)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof and /debug/summary on this host:port (enables run metrics; :0 picks a free port, printed to stderr)")
	events := flag.String("events", "", "append structured JSONL run events (spans, ladder transitions) to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mgba:", err)
		}
	}()

	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		obs.Enable(true)
		obs.SetSink(f)
		defer obs.SetSink(nil)
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "mgba: debug server listening on %s\n", srv.Addr())
		defer srv.Close()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var d *netlist.Design
	if *loadFile != "" {
		var err error
		d, err = netio.LoadFile(*loadFile)
		if err != nil {
			fail(err)
		}
	} else {
		cfg, err := findConfig(*design)
		if err != nil {
			fail(err)
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		d, err = gen.Generate(cfg)
		if err != nil {
			fail(err)
		}
	}
	if *saveFile != "" {
		if err := netio.SaveFile(*saveFile, d); err != nil {
			fail(err)
		}
	}
	g, err := graph.Build(d)
	if err != nil {
		fail(err)
	}
	opt := core.DefaultOptions()
	opt.K = *k
	opt.Epsilon = *epsilon
	opt.ViewPair = *viewpair
	if opt.Corners, err = core.ParseCorners(*corners); err != nil {
		fail(err)
	}
	opt.JointFit = *jointfit
	switch strings.ToLower(*method) {
	case "gd":
		opt.Method = core.MethodGD
	case "scg":
		opt.Method = core.MethodSCG
	case "scgrs":
		opt.Method = core.MethodSCGRS
	case "full":
		opt.Method = core.MethodFull
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}
	cfg := sta.DefaultConfig()
	cfg.Parallelism = *par
	m, err := core.Calibrate(ctx, g, cfg, opt)
	if err != nil {
		fail(err)
	}
	if m.Partial {
		fmt.Println("note: calibration cut short by -timeout; reporting the partial (safety-scaled) fit")
	}
	if m.Fault != "" {
		fmt.Printf("note: %s\n", m.Fault)
	}

	st := d.Stats()
	fmt.Printf("design %s (node %dnm): %s, period %.0f ps\n", d.Name, d.Node, st, d.ClockPeriod)
	if len(m.Selection.Paths) == 0 {
		fmt.Println("no violated paths: mGBA degenerates to GBA (unit weights)")
		return
	}
	gba, err := m.Evaluate("cheap")
	if err != nil {
		fail(err)
	}
	mgba, err := m.Evaluate("mgba")
	if err != nil {
		fail(err)
	}
	t := report.New(fmt.Sprintf("mGBA calibration (%v, k'=%d, pair %s)", opt.Method, opt.K, m.Pair),
		"metric", "cheap", "mGBA")
	t.AddRow("selected paths", fmt.Sprintf("%d", gba.Paths), fmt.Sprintf("%d", mgba.Paths))
	t.AddRow("pass ratio (%)", report.Pct(gba.PassRatio, 2), report.Pct(mgba.PassRatio, 2))
	t.AddRow("mse (Eq. 12, 1e-3)", report.F(gba.MSE*1e3, 3), report.F(mgba.MSE*1e3, 3))
	t.AddRow("phi (Eq. 10, %)", report.Pct(gba.Phi, 2), report.Pct(mgba.Phi, 2))
	t.AddRow("optimistic paths", fmt.Sprintf("%d", gba.Optimism), fmt.Sprintf("%d", mgba.Optimism))
	t.AddNote("solver: %d iterations over %d rows in %v", m.Stats.Iters, m.Stats.RowsUsed, m.Stats.Elapsed)
	t.AddNote("correction sparsity: %s%% of entries within [-0.01, 0.01]", report.Pct(m.SparsityFraction(0.01), 1))
	fmt.Print(t.String())
	if len(m.Corners) > 0 {
		fit := "independent fits"
		if opt.JointFit {
			fit = "joint fit"
		}
		fmt.Printf("corners (%d, %s): merged worst WNS %.1f ps, TNS %.1f ps\n",
			len(m.Corners), fit, m.WorstWNS, m.WorstTNS)
		for _, cf := range m.Corners {
			cm, err := cf.Evaluate("mgba", opt.Epsilon)
			if err != nil {
				fail(err)
			}
			fmt.Printf("  %-12s WNS %9.1f ps  mse %.3e  optimistic paths %d\n",
				cf.Spec.Name, cf.MGBA.WNS, cm.MSE, cm.Optimism)
		}
	}
}

func findConfig(name string) (gen.Config, error) {
	if strings.EqualFold(name, "toy") {
		return gen.Toy(), nil
	}
	for _, cfg := range gen.Suite() {
		if strings.EqualFold(cfg.Name, name) {
			return cfg, nil
		}
	}
	return gen.Config{}, fmt.Errorf("unknown design %q (toy, D1..D10)", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mgba:", err)
	os.Exit(1)
}
