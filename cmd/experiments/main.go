// Command experiments regenerates every table and figure of the paper's
// evaluation on the synthetic design suite:
//
//	experiments -run all            # everything (several minutes)
//	experiments -run table3,table4  # specific artifacts
//	experiments -quick              # scaled-down suite for a fast pass
//
// Artifacts: table1, fig2, sec32, fig3, fig4, table2, table3, table4,
// table5, bench, benchsolver, benchclosure, benchcalibd, benchxstage,
// benchscale. Output is plain text; -csv writes each table additionally
// as CSV into the given directory; -json makes the bench artifacts also
// write their machine-readable results (BENCH_calibration.json,
// BENCH_solver.json, BENCH_closure.json, BENCH_calibd.json,
// BENCH_xstage.json, BENCH_scale.json). Artifact paths are probed for
// writability before any benchmark runs, so an unwritable destination
// fails immediately instead of after minutes of timing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mgba/internal/expt"
	"mgba/internal/report"
)

func main() {
	runList := flag.String("run", "all", "comma-separated artifacts to regenerate, or 'all'")
	quick := flag.Bool("quick", false, "use a scaled-down design suite")
	csvDir := flag.String("csv", "", "directory to also write tables as CSV")
	jsonOut := flag.Bool("json", false, "bench artifacts: also write their BENCH_*.json result")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	var progress = os.Stderr
	if *quiet {
		progress = nil
	}
	env := expt.NewEnv(progress, *quick)

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	ran := 0

	// Benchmarks run for minutes; an unwritable artifact destination must
	// fail before the timing starts, not after it.
	benchArtifacts := map[string]string{
		"bench":        "BENCH_calibration.json",
		"benchsolver":  "BENCH_solver.json",
		"benchclosure": "BENCH_closure.json",
		"benchcalibd":  "BENCH_calibd.json",
		"benchxstage":  "BENCH_xstage.json",
		"benchscale":   "BENCH_scale.json",
		"benchmcmm":    "BENCH_mcmm.json",
	}
	if *jsonOut {
		for name, path := range benchArtifacts {
			if !want[name] {
				continue
			}
			if err := probeWritable(path); err != nil {
				fail(fmt.Errorf("artifact %s is not writable: %w", path, err))
			}
		}
	}
	writeJSON := func(path string, res any) {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			fail(fmt.Errorf("writing artifact %s: %w", path, err))
		}
	}

	emit := func(name string, t *report.Table) {
		fmt.Println(t.String())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := t.CSV(f); err != nil {
				fail(err)
			}
			f.Close()
		}
		ran++
	}

	if all || want["table1"] {
		emit("table1", expt.Table1(env))
	}
	if all || want["fig2"] {
		t, err := expt.Fig2(env)
		if err != nil {
			fail(err)
		}
		emit("fig2", t)
	}
	if all || want["sec32"] {
		t, err := expt.Sec32(env)
		if err != nil {
			fail(err)
		}
		emit("sec32", t)
	}
	if all || want["fig3"] {
		s, _, err := expt.Fig3(env)
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
		ran++
	}
	if all || want["fig4"] {
		t, err := expt.Fig4(env)
		if err != nil {
			fail(err)
		}
		emit("fig4", t)
	}
	if all || want["table4"] {
		t, _, err := expt.Table4(env)
		if err != nil {
			fail(err)
		}
		emit("table4", t)
	}
	if all || want["table4x"] {
		t, err := expt.Table4Scaling(env)
		if err != nil {
			fail(err)
		}
		emit("table4x", t)
	}
	if all || want["table3"] {
		t, _, err := expt.Table3(env)
		if err != nil {
			fail(err)
		}
		emit("table3", t)
	}
	if all || want["table2"] {
		t, _, err := expt.Table2(env)
		if err != nil {
			fail(err)
		}
		emit("table2", t)
	}
	if all || want["table5"] {
		t, err := expt.Table5(env)
		if err != nil {
			fail(err)
		}
		emit("table5", t)
	}
	if want["bench"] { // deliberately not part of 'all': minutes of pure timing
		t, res, err := expt.BenchCalibration(env)
		if err != nil {
			fail(err)
		}
		emit("bench", t)
		if *jsonOut {
			writeJSON("BENCH_calibration.json", res)
		}
	}
	if want["benchsolver"] { // deliberately not part of 'all': pure timing
		t, res, err := expt.BenchSolver(env)
		if err != nil {
			fail(err)
		}
		emit("benchsolver", t)
		if *jsonOut {
			writeJSON("BENCH_solver.json", res)
		}
	}
	if want["benchclosure"] { // deliberately not part of 'all': pure timing
		t, res, err := expt.BenchClosure(env)
		if err != nil {
			fail(err)
		}
		emit("benchclosure", t)
		if *jsonOut {
			writeJSON("BENCH_closure.json", res)
		}
	}
	if want["benchcalibd"] { // deliberately not part of 'all': pure timing
		t, res, err := expt.BenchCalibd(env)
		if err != nil {
			fail(err)
		}
		emit("benchcalibd", t)
		if *jsonOut {
			writeJSON("BENCH_calibd.json", res)
		}
	}
	if want["benchxstage"] { // deliberately not part of 'all': pure timing
		t, res, err := expt.BenchXStage(env)
		if err != nil {
			fail(err)
		}
		emit("benchxstage", t)
		if *jsonOut {
			writeJSON("BENCH_xstage.json", res)
		}
	}
	if want["benchscale"] { // deliberately not part of 'all': pure timing
		t, res, err := expt.BenchScale(env)
		if err != nil {
			fail(err)
		}
		emit("benchscale", t)
		if *jsonOut {
			writeJSON("BENCH_scale.json", res)
		}
	}
	if want["benchmcmm"] { // deliberately not part of 'all': pure timing
		t, res, err := expt.BenchMCMM(env)
		if err != nil {
			fail(err)
		}
		emit("benchmcmm", t)
		if *jsonOut {
			writeJSON("BENCH_mcmm.json", res)
		}
	}
	if ran == 0 {
		fail(fmt.Errorf("nothing matched -run=%q; artifacts: table1 fig2 sec32 fig3 fig4 table2 table3 table4 table4x table5 bench benchsolver benchclosure benchcalibd benchxstage benchscale benchmcmm all", *runList))
	}
}

// probeWritable verifies the artifact path can be created or truncated
// without disturbing an existing file's contents.
func probeWritable(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
