// Command closure runs the post-route timing-closure optimization flow on
// one synthetic design, with either original GBA or calibrated mGBA as the
// embedded timer:
//
//	closure -design D3 -timer gba
//	closure -design D3 -timer mgba
//	closure -design D8 -timer both   # side-by-side QoR comparison
//
// The "both" mode regenerates the identical design for each flow and prints
// a Table-2-style comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mgba/internal/closure"
	"mgba/internal/gen"
	"mgba/internal/report"
)

func main() {
	design := flag.String("design", "D3", "design to optimize: toy or D1..D10")
	timer := flag.String("timer", "both", "embedded timer: gba, mgba, or both")
	seed := flag.Uint64("seed", 0, "override the design seed (0 keeps the preset)")
	flag.Parse()

	cfg, err := findConfig(*design)
	if err != nil {
		fail(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var kinds []closure.TimerKind
	switch strings.ToLower(*timer) {
	case "gba":
		kinds = []closure.TimerKind{closure.TimerGBA}
	case "mgba":
		kinds = []closure.TimerKind{closure.TimerMGBA}
	case "both":
		kinds = []closure.TimerKind{closure.TimerGBA, closure.TimerMGBA}
	default:
		fail(fmt.Errorf("unknown timer %q", *timer))
	}

	t := report.New(fmt.Sprintf("timing closure on %s", cfg.Name),
		"timer", "upsized", "downsized", "buffers+", "viol left",
		"signoff WNS", "signoff TNS", "area", "leakage", "runtime", "calib time")
	for _, kind := range kinds {
		d, err := gen.Generate(cfg)
		if err != nil {
			fail(err)
		}
		res, err := closure.Optimize(d, closure.DefaultOptions(kind))
		if err != nil {
			fail(err)
		}
		t.AddRow(kind.String(),
			fmt.Sprintf("%d", res.Upsized),
			fmt.Sprintf("%d", res.Downsized),
			fmt.Sprintf("%d", res.BuffersAdded),
			fmt.Sprintf("%d", res.ViolatedEndpoints),
			report.F(res.SignoffWNS, 1),
			report.F(res.SignoffTNS, 1),
			report.F(res.Area, 1),
			report.F(res.Leakage, 1),
			res.Elapsed.Round(1e6).String(),
			res.CalibElapsed.Round(1e6).String())
	}
	t.AddNote("signoff numbers are PBA-measured; a less pessimistic timer needs fewer fixes")
	fmt.Print(t.String())
}

func findConfig(name string) (gen.Config, error) {
	if strings.EqualFold(name, "toy") {
		return gen.Toy(), nil
	}
	for _, cfg := range gen.Suite() {
		if strings.EqualFold(cfg.Name, name) {
			return cfg, nil
		}
	}
	return gen.Config{}, fmt.Errorf("unknown design %q (toy, D1..D10)", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "closure:", err)
	os.Exit(1)
}
