// Command closure runs the post-route timing-closure optimization flow on
// one synthetic design, with either original GBA or calibrated mGBA as the
// embedded timer:
//
//	closure -design D3 -timer gba
//	closure -design D3 -timer mgba
//	closure -design D8 -timer both   # side-by-side QoR comparison
//
// The "both" mode regenerates the identical design for each flow and prints
// a Table-2-style comparison.
//
// Long runs can be bounded and made restartable:
//
//	closure -design D8 -timer mgba -timeout 2m -checkpoint run.ckpt
//	closure -resume run.ckpt -timer mgba      # continue an interrupted run
//
// A run stopped by -timeout (or Ctrl-C semantics via context) still prints
// its partial QoR; with -checkpoint set it can be resumed to completion.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mgba/internal/closure"
	"mgba/internal/core"
	"mgba/internal/fixtures"
	"mgba/internal/gen"
	"mgba/internal/netlist"
	"mgba/internal/obs"
	"mgba/internal/prof"
	"mgba/internal/report"
)

func main() {
	design := flag.String("design", "D3", "design to optimize: toy, D1..D10, or a fixture (retimetoy, bufcase)")
	timer := flag.String("timer", "both", "embedded timer: gba, mgba, or both")
	transforms := flag.String("transforms", "", "comma-separated repair transforms, e.g. upsize,buffer,retime (empty: default registry)")
	scheduler := flag.String("scheduler", "", "endpoint scheduler: greedy (default) or roundrobin")
	budgets := flag.String("budgets", "", "per-kind accept budgets as kind=n[,kind=n], e.g. retime=20,buffer=10")
	retimeLag := flag.Int("retime-lag", 0, "retime: max net register slides per FF (0: default cap, -1: unlimited)")
	seed := flag.Uint64("seed", 0, "override the design seed (0 keeps the preset)")
	timeout := flag.Duration("timeout", 0, "stop the flow after this long (0: no limit); partial results are reported")
	ckpt := flag.String("checkpoint", "", "write resumable checkpoints to this file (atomic)")
	ckptEvery := flag.Int("checkpoint-every", 50, "accepted transforms between periodic checkpoints")
	resume := flag.String("resume", "", "resume an interrupted run from this checkpoint file (requires -timer gba or mgba)")
	coldcal := flag.Bool("coldcal", false, "mgba: full cold calibration at every recalibration point instead of the incremental calibrator (ablation; bit-identical results, just slower)")
	viewpair := flag.String("viewpair", "", "mgba: view pair to calibrate against: gba-pba (default) or preroute (cross-stage: corrections fitted to a deterministically routed twin)")
	corners := flag.String("corners", "", "mgba: multi-corner set, name[:derate-scale[:uncertainty-ps]],... e.g. typ,slow:1.15:10; repairs are scheduled on the merged worst-corner slack and no accepted move may regress a corner")
	par := flag.Int("par", 0, "worker count for timing propagation, path enumeration and solver kernels (0: GOMAXPROCS, 1: serial; the result is identical at every setting)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof and /debug/summary on this host:port (enables run metrics; :0 picks a free port, printed to stderr)")
	debugHold := flag.Duration("debug-hold", 0, "keep the -debug-addr server up this long after the run finishes, for post-run inspection")
	events := flag.String("events", "", "append structured JSONL run events (spans, checkpoints, ladder transitions) to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "closure:", err)
		}
	}()

	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		obs.Enable(true)
		obs.SetSink(f)
		defer obs.SetSink(nil)
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "closure: debug server listening on %s\n", srv.Addr())
		defer func() {
			if *debugHold > 0 {
				fmt.Fprintf(os.Stderr, "closure: holding debug server for %s\n", *debugHold)
				time.Sleep(*debugHold)
			}
			srv.Close()
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cornerSet, err := core.ParseCorners(*corners)
	if err != nil {
		fail(err)
	}

	applyRegistry := func(opt *closure.Options) {
		opt.Core.ViewPair = *viewpair
		opt.Core.Corners = cornerSet
		opt.Transforms = parseTransforms(*transforms)
		opt.Scheduler = *scheduler
		opt.RetimeMaxLag = *retimeLag
		kb, err := parseBudgets(*budgets)
		if err != nil {
			fail(err)
		}
		opt.KindBudgets = kb
	}

	if *resume != "" {
		kind, err := singleTimer(*timer)
		if err != nil {
			fail(fmt.Errorf("-resume needs one timer: %w", err))
		}
		opt := closure.DefaultOptions(kind)
		opt.ColdRecalibrate = *coldcal
		opt.CheckpointPath = *resume
		opt.CheckpointEvery = *ckptEvery
		opt.STA.Parallelism = *par
		applyRegistry(&opt)
		res, err := closure.Resume(ctx, *resume, opt)
		if err != nil {
			fail(err)
		}
		printRows(fmt.Sprintf("timing closure resumed from %s", *resume), []row{{kind, res}})
		return
	}

	build, name, err := findDesign(*design, *seed)
	if err != nil {
		fail(err)
	}

	var kinds []closure.TimerKind
	switch strings.ToLower(*timer) {
	case "gba":
		kinds = []closure.TimerKind{closure.TimerGBA}
	case "mgba":
		kinds = []closure.TimerKind{closure.TimerMGBA}
	case "both":
		kinds = []closure.TimerKind{closure.TimerGBA, closure.TimerMGBA}
	default:
		fail(fmt.Errorf("unknown timer %q", *timer))
	}
	if *ckpt != "" && len(kinds) > 1 {
		fail(fmt.Errorf("-checkpoint needs a single -timer (the file holds one flow)"))
	}

	var rows []row
	for _, kind := range kinds {
		d, err := build()
		if err != nil {
			fail(err)
		}
		opt := closure.DefaultOptions(kind)
		opt.ColdRecalibrate = *coldcal
		opt.CheckpointPath = *ckpt
		opt.CheckpointEvery = *ckptEvery
		opt.STA.Parallelism = *par
		applyRegistry(&opt)
		res, err := closure.Run(ctx, d, opt)
		if err != nil {
			fail(err)
		}
		rows = append(rows, row{kind, res})
	}
	printRows(fmt.Sprintf("timing closure on %s", name), rows)
}

type row struct {
	kind closure.TimerKind
	res  *closure.Result
}

func printRows(title string, rows []row) {
	t := report.New(title,
		"timer", "upsized", "downsized", "buffers+", "retimed", "viol left",
		"signoff WNS", "signoff TNS", "area", "leakage", "runtime", "calib time")
	interrupted := false
	for _, r := range rows {
		res := r.res
		name := r.kind.String()
		if res.Interrupted {
			name += " (partial)"
			interrupted = true
		}
		t.AddRow(name,
			fmt.Sprintf("%d", res.Upsized),
			fmt.Sprintf("%d", res.Downsized),
			fmt.Sprintf("%d", res.BuffersAdded),
			fmt.Sprintf("%d", res.Retimed()),
			fmt.Sprintf("%d", res.ViolatedEndpoints),
			report.F(res.SignoffWNS, 1),
			report.F(res.SignoffTNS, 1),
			report.F(res.Area, 1),
			report.F(res.Leakage, 1),
			res.Elapsed.Round(time.Millisecond).String(),
			res.CalibElapsed.Round(time.Millisecond).String())
	}
	t.AddNote("signoff numbers are PBA-measured; a less pessimistic timer needs fewer fixes")
	for _, r := range rows {
		for _, cq := range r.res.Corners {
			t.AddNote("%s corner %s: WNS %s ps, TNS %s ps",
				r.kind, cq.Name, report.F(cq.WNS, 1), report.F(cq.TNS, 1))
		}
	}
	for _, r := range rows {
		if r.res.DegradedCalibrations > 0 {
			t.AddNote("%s: %d of %d calibrations degraded down the solver ladder",
				r.kind, r.res.DegradedCalibrations, r.res.Calibrations)
		}
		for _, f := range r.res.Faults {
			t.AddNote("%s fault: %s", r.kind, f)
		}
	}
	if interrupted {
		t.AddNote("run interrupted (%s); resume with -resume <checkpoint>", rows[len(rows)-1].res.StopReason)
	}
	fmt.Print(t.String())
}

func singleTimer(name string) (closure.TimerKind, error) {
	switch strings.ToLower(name) {
	case "gba":
		return closure.TimerGBA, nil
	case "mgba":
		return closure.TimerMGBA, nil
	default:
		return 0, fmt.Errorf("got %q, want gba or mgba", name)
	}
}

// findDesign resolves a design name to a builder. Generated designs come
// from the suite presets (with an optional seed override); the hand-built
// closure fixtures are deterministic, so "both" mode gets an identical
// design per timer either way.
func findDesign(name string, seed uint64) (func() (*netlist.Design, error), string, error) {
	switch strings.ToLower(name) {
	case "retimetoy":
		return func() (*netlist.Design, error) { return fixtures.RetimePipeline(4) }, "retimetoy", nil
	case "bufcase":
		return fixtures.BufferCase, "bufcase", nil
	}
	cfg, err := findConfig(name)
	if err != nil {
		return nil, "", err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	return func() (*netlist.Design, error) { return gen.Generate(cfg) }, cfg.Name, nil
}

func findConfig(name string) (gen.Config, error) {
	if strings.EqualFold(name, "toy") {
		return gen.Toy(), nil
	}
	for _, cfg := range gen.Suite() {
		if strings.EqualFold(cfg.Name, name) {
			return cfg, nil
		}
	}
	return gen.Config{}, fmt.Errorf("unknown design %q (toy, D1..D10, retimetoy, bufcase)", name)
}

// parseTransforms splits the -transforms CSV; empty means the default
// registry (nil).
func parseTransforms(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var names []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			names = append(names, f)
		}
	}
	return names
}

// parseBudgets decodes "kind=n[,kind=n]" into per-kind accept budgets.
func parseBudgets(s string) (map[string]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, f := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok {
			return nil, fmt.Errorf("bad -budgets entry %q (want kind=n)", f)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad -budgets count %q: %w", f, err)
		}
		out[strings.TrimSpace(k)] = n
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "closure:", err)
	os.Exit(1)
}
